(* Fig. 6 + Fig. 7: scavenger-vs-primary two-flow competition on the
   50 Mbps / 30 ms Emulab link with shallow (75 KB) and deep (375 KB)
   buffers. Fig. 6 reports the primary-throughput ratio and the joint
   utilization; Fig. 7 the 95th-percentile RTT ratio (375 KB).
   Fig. 19/20 (Appendix B) add LEDBAT-25 as the scavenger. *)

module Net = Proteus_net
module D = Proteus_stats.Descriptive

(* Primary-alone runs are shared across scavengers: memoize. The mutex
   keeps the table safe when scavenger columns run on separate domains;
   a duplicated miss is harmless (same seed -> same value). *)
let alone_cache : (string * int * int, float * float) Hashtbl.t =
  Hashtbl.create 64

let alone_cache_mutex = Mutex.create ()

let cache_find key =
  Mutex.lock alone_cache_mutex;
  let v = Hashtbl.find_opt alone_cache key in
  Mutex.unlock alone_cache_mutex;
  v

let cache_store key v =
  Mutex.lock alone_cache_mutex;
  Hashtbl.replace alone_cache key v;
  Mutex.unlock alone_cache_mutex

let alone_run (p : Exp_common.proto) ~buffer_bytes ~seed =
  let key = (p.Exp_common.name, buffer_bytes, seed) in
  match cache_find key with
  | Some v -> v
  | None ->
      let duration = Exp_common.pair_duration () in
      let t0 = duration /. 3.0 in
      let cfg = Exp_common.emulab_cfg ~buffer_bytes () in
      let r = Net.Runner.create ~seed cfg in
      let f = Net.Runner.add_flow r ~label:"alone" ~factory:(p.Exp_common.make ()) in
      Net.Runner.run r ~until:duration;
      let st = Net.Runner.stats f in
      let tput = Net.Flow_stats.throughput_mbps st ~t0 ~t1:duration in
      let p95 =
        Option.value ~default:0.0
          (Net.Flow_stats.rtt_percentile st ~t0 ~t1:duration ~p:95.0)
      in
      cache_store key (tput, p95);
      (tput, p95)

type cell = {
  ratio : float;
  utilization : float;
  rtt_ratio : float;
  scav_tput : float;
}

let compete ~(primary : Exp_common.proto) ~(scavenger : Exp_common.proto)
    ~buffer_bytes =
  let n = Exp_common.trials () in
  let cells =
    Exp_common.par_map
      (fun i ->
        let seed = (i * 13) + 1 in
        let alone_tput, alone_p95 = alone_run primary ~buffer_bytes ~seed in
        let duration = Exp_common.pair_duration () in
        let t0 = duration /. 3.0 in
        let cfg = Exp_common.emulab_cfg ~buffer_bytes () in
        let r = Net.Runner.create ~seed:(seed + 500) cfg in
        let pf =
          Net.Runner.add_flow r ~label:"primary"
            ~factory:(primary.Exp_common.make ())
        in
        let sf =
          Net.Runner.add_flow r ~start:(duration /. 6.0) ~label:"scav"
            ~factory:(scavenger.Exp_common.make ())
        in
        Net.Runner.run r ~until:duration;
        let tput =
          Net.Flow_stats.throughput_mbps (Net.Runner.stats pf) ~t0 ~t1:duration
        in
        let p95 =
          Option.value ~default:0.0
            (Net.Flow_stats.rtt_percentile (Net.Runner.stats pf) ~t0
               ~t1:duration ~p:95.0)
        in
        let scav =
          Net.Flow_stats.throughput_mbps (Net.Runner.stats sf) ~t0 ~t1:duration
        in
        {
          ratio = (if alone_tput > 0.0 then tput /. alone_tput else 0.0);
          utilization = (tput +. scav) /. 50.0;
          rtt_ratio = (if alone_p95 > 0.0 then p95 /. alone_p95 else 0.0);
          scav_tput = scav;
        })
      (List.init n (fun i -> i))
  in
  let avg f = D.mean (Array.of_list (List.map f cells)) in
  {
    ratio = avg (fun c -> c.ratio);
    utilization = avg (fun c -> c.utilization);
    rtt_ratio = avg (fun c -> c.rtt_ratio);
    scav_tput = avg (fun c -> c.scav_tput);
  }

let scavengers ?(appendix = false) () =
  if appendix then [ Exp_common.ledbat_25 ]
  else
    [ Exp_common.ledbat_100; Exp_common.proteus_s; Exp_common.proteus_p;
      Exp_common.copa ]

let run ?(appendix = false) () =
  let title =
    if appendix then
      "Fig. 19+20 (Appendix B) — LEDBAT-25 as scavenger vs primaries"
    else "Fig. 6 — scavenger vs primary competition (50 Mbps, 30 ms)"
  in
  Exp_common.run_experiment
    ~id:(if appendix then "figB-yield" else "fig6")
    ~title
  @@ fun () ->
  let results =
    Exp_common.par_map
      (fun scav ->
        ( scav,
          List.map
            (fun prim ->
              ( prim,
                List.map
                  (fun buffer_kb ->
                    ( buffer_kb,
                      compete ~primary:prim ~scavenger:scav
                        ~buffer_bytes:(Net.Units.kb buffer_kb) ))
                  [ 75.0; 375.0 ] ))
            Exp_common.primaries ))
      (scavengers ~appendix ())
  in
  List.iter
    (fun ((scav : Exp_common.proto), rows) ->
      Exp_common.subheader
        (Printf.sprintf "%s as scavenger: primary ratio %% / joint utilization %%"
           scav.Exp_common.name);
      Printf.printf "%-12s %14s %14s\n" "primary" "75KB buffer" "375KB buffer";
      List.iter
        (fun ((prim : Exp_common.proto), cells) ->
          Printf.printf "%-12s" prim.Exp_common.name;
          List.iter
            (fun (_, c) ->
              Printf.printf "  %5.1f / %5.1f" (100.0 *. c.ratio)
                (100.0 *. c.utilization))
            cells;
          Printf.printf "   (scav %4.1f Mbps @375KB)\n"
            (snd (List.nth cells 1)).scav_tput)
        rows)
    results;
  Exp_common.subheader
    (if appendix then "Fig. 20 — 95th-%%ile RTT ratio (375 KB buffer)"
     else "Fig. 7 — 95th-%ile RTT ratio with competition (375 KB buffer)");
  Printf.printf "%-12s" "primary";
  List.iter
    (fun (s, _) -> Printf.printf "%12s" s.Exp_common.name)
    results;
  print_newline ();
  List.iter
    (fun (prim : Exp_common.proto) ->
      Printf.printf "%-12s" prim.Exp_common.name;
      List.iter
        (fun (_, rows) ->
          let _, cells = List.find (fun (p, _) -> p == prim) rows in
          let _, c375 = List.nth cells 1 in
          Printf.printf "%12.2f" c375.rtt_ratio)
        results;
      print_newline ())
    Exp_common.primaries;
  Printf.printf
    "\nShape check: Proteus-S keeps primary ratio >= ~90%% everywhere and\n\
     RTT ratio ~1; LEDBAT fair-shares with CUBIC, crushes latency-aware\n\
     primaries, and inflates their RTT (e.g. ~2x for COPA).\n";
  []
