(* Fault-injection sweep: every congestion controller is pushed through
   dynamic-link scenarios — hard outage (drain and flush variants), a
   bandwidth step, a bursty Gilbert–Elliott loss window, and a combined
   "chaos" mix with ACK reordering and duplication — with the runtime
   invariant auditor attached for the whole run. Emits recovery-time
   and post-fault fairness metrics to `BENCH_faults.json`.

   Determinism: each (scenario x protocol x trial) task derives its
   runner seed with [Rng.split_at] from a fixed root, so a task's seed
   depends only on its key — never on how many sibling tasks ran first
   — and a `--jobs N` sweep is bit-identical to the sequential one. *)

module Net = Proteus_net
module Link = Net.Link
module Rng = Proteus_stats.Rng
module D = Proteus_stats.Descriptive

(* ---------- timing ---------- *)

let duration () = Exp_common.pick ~fast:20.0 ~default:40.0 ~full:60.0
let fault_start () = Exp_common.pick ~fast:8.0 ~default:15.0 ~full:25.0

(* Flows stop two seconds before the horizon so every in-flight packet
   lands (ACK or loss notification) and the auditor can assert full
   conservation at the end of the run. *)
let drain_margin = 2.0

(* ---------- scenarios ---------- *)

let base_bw = 20.0
let series_bin = 0.25

let burst_loss =
  Link.Gilbert_elliott
    { p_good_bad = 0.05; p_bad_good = 0.2; loss_good = 0.0; loss_bad = 0.5 }

type scenario = {
  sid : string;
  cfg : Link.config;
  fault_end : float;  (* when the impairment is fully lifted *)
}

let scenarios () =
  let fs = fault_start () in
  let mk ?reorder_prob ?dup_prob schedule =
    Link.config ?reorder_prob ?dup_prob ~schedule ~bandwidth_mbps:base_bw
      ~rtt_ms:30.0 ~buffer_bytes:150_000 ()
  in
  [
    {
      sid = "outage";
      cfg = mk [ (fs, Link.Down { duration = 2.0; flush = false }) ];
      fault_end = fs +. 2.0;
    };
    {
      sid = "outage-flush";
      cfg = mk [ (fs, Link.Down { duration = 2.0; flush = true }) ];
      fault_end = fs +. 2.0;
    };
    {
      sid = "bw-step";
      cfg =
        mk
          [
            (fs, Link.Set_bandwidth 4.0);
            (fs +. 3.0, Link.Set_bandwidth base_bw);
          ];
      fault_end = fs +. 3.0;
    };
    {
      sid = "bursty-loss";
      cfg =
        mk
          [
            (fs, Link.Set_loss burst_loss);
            (fs +. 3.0, Link.Set_loss (Link.Iid 0.0));
          ];
      fault_end = fs +. 3.0;
    };
    {
      sid = "chaos";
      cfg =
        mk ~reorder_prob:0.05 ~dup_prob:0.02
          [
            (fs, Link.Down { duration = 1.0; flush = false });
            (fs +. 1.0, Link.Set_loss burst_loss);
            (fs +. 3.0, Link.Set_loss (Link.Iid 0.0));
          ];
      fault_end = fs +. 3.0;
    };
  ]

let protos =
  Exp_common.
    [ proteus_p; proteus_s; cubic; bbr; copa; ledbat_100 ]

(* ---------- one run ---------- *)

type run_result = {
  prefault_mbps : float;
  postfault_mbps : float;
  recovery_s : float option;  (* None = never recovered before the end *)
  fairness_jain : float;
  loss_frac : float;
  audited_events : int;
}

let window_mean series ~t0 ~t1 =
  let sum = ref 0.0 and n = ref 0 in
  Array.iter
    (fun (t, v) ->
      if t >= t0 -. 1e-9 && t < t1 -. 1e-9 then begin
        sum := !sum +. v;
        incr n
      end)
    series;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let jain xs =
  let s = Array.fold_left ( +. ) 0.0 xs in
  let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if s2 <= 0.0 then 1.0
  else s *. s /. (float_of_int (Array.length xs) *. s2)

(* Two flows of the protocol under test share the bottleneck; recovery
   is the time after the fault lifts until the combined goodput first
   climbs back to 80% of its pre-fault average. *)
let run_one ~seed (p : Exp_common.proto) (sc : scenario) =
  let duration = duration () in
  let fs = fault_start () in
  let stop = duration -. drain_margin in
  let r = Net.Runner.create ~seed ~kernel:!Exp_common.kernel sc.cfg in
  Exp_common.arm r;
  let audit = Net.Runner.attach_audit r in
  let f1 = Net.Runner.add_flow r ~stop ~label:"a" ~factory:(p.make ()) in
  let f2 = Net.Runner.add_flow r ~stop ~label:"b" ~factory:(p.make ()) in
  Net.Runner.run r ~until:duration;
  Net.Audit.assert_quiesced audit;
  let series f =
    Net.Flow_stats.throughput_series (Net.Runner.stats f) ~bin:series_bin
      ~until:stop
  in
  let s1 = series f1 and s2 = series f2 in
  let combined =
    Array.mapi (fun i (t, v) -> (t, v +. snd s2.(i))) s1
  in
  let prefault = window_mean combined ~t0:(fs -. 5.0) ~t1:fs in
  let post_t0 = stop -. 5.0 in
  let postfault = window_mean combined ~t0:post_t0 ~t1:stop in
  let threshold = 0.8 *. prefault in
  let recovery = ref None in
  Array.iter
    (fun (t, v) ->
      if !recovery = None && t >= sc.fault_end && v >= threshold then
        recovery := Some (Float.max 0.0 (t -. sc.fault_end)))
    combined;
  let per_flow =
    [|
      window_mean s1 ~t0:post_t0 ~t1:stop; window_mean s2 ~t0:post_t0 ~t1:stop;
    |]
  in
  let st1 = Net.Runner.stats f1 and st2 = Net.Runner.stats f2 in
  let sent =
    Net.Flow_stats.packets_sent st1 + Net.Flow_stats.packets_sent st2
  in
  let lost =
    Net.Flow_stats.packets_lost st1 + Net.Flow_stats.packets_lost st2
  in
  {
    prefault_mbps = prefault;
    postfault_mbps = postfault;
    recovery_s = !recovery;
    fairness_jain = jain per_flow;
    loss_frac =
      (if sent = 0 then 0.0 else float_of_int lost /. float_of_int sent);
    audited_events = Net.Audit.events_checked audit;
  }

(* ---------- journal codec ---------- *)

(* %h floats round-trip byte-exactly through the journal, which is what
   lets a --resume sweep reproduce BENCH_faults.json byte-for-byte. *)
let encode_result r =
  Printf.sprintf "%h %h %s %h %h %d" r.prefault_mbps r.postfault_mbps
    (match r.recovery_s with
    | Some v -> Printf.sprintf "%h" v
    | None -> "-")
    r.fairness_jain r.loss_frac r.audited_events

let decode_result s =
  match String.split_on_char ' ' s with
  | [ pre; post; recov; fair; loss; audited ] ->
      {
        prefault_mbps = float_of_string pre;
        postfault_mbps = float_of_string post;
        recovery_s =
          (if recov = "-" then None else Some (float_of_string recov));
        fairness_jain = float_of_string fair;
        loss_frac = float_of_string loss;
        audited_events = int_of_string audited;
      }
  | _ -> failwith "faults: corrupt journal payload"

(* ---------- sweep ---------- *)

type row = {
  scenario : string;
  cc : string;
  mean : run_result;
  (* 95% confidence half-widths over trials (0 with fewer than two). *)
  pre_ci : float;
  post_ci : float;
  recov_ci : float;
  fair_ci : float;
  recovered : int;  (* trials whose goodput got back over the bar *)
  trials : int;
}

(* Each (scenario x protocol x trial) task is one supervised run: the
   run id names it for the journal and --inject, and a crashed /
   stalled / over-budget trial drops out of its cell's aggregation
   instead of killing the sweep. *)
let sweep () =
  let root = Rng.create ~seed:20_260_806 in
  let trials = Exp_common.trials () in
  let scs = scenarios () in
  let tasks =
    List.concat
      (List.mapi
         (fun si sc ->
           List.concat
             (List.mapi
                (fun pi p ->
                  List.init trials (fun tr ->
                      let key = (((si * 64) + pi) * 64) + tr in
                      let seed =
                        1 + Rng.int (Rng.split_at root ~key) 1_000_000
                      in
                      (si, sc, pi, p, tr, seed)))
                protos))
         scs)
  in
  let cfg =
    Exp_common.sweep_config ~journal:"JOURNAL_faults.jsonl"
      ~params:
        [
          "faults";
          Exp_common.scale_name ();
          Exp_common.kernel_name ();
          string_of_int trials;
          Printf.sprintf "%g" (duration ());
        ]
  in
  let srows =
    Exp_common.sup_map cfg
      ~run_id:(fun (_, sc, _, (p : Exp_common.proto), tr, _) ->
        Printf.sprintf "%s/%s/t%d" sc.sid p.name tr)
      ~seed_of:(fun (_, _, _, _, _, seed) -> seed)
      ~encode:encode_result ~decode:decode_result
      (fun (_, sc, _, p, _, seed) -> run_one ~seed p sc)
      tasks
  in
  let results =
    List.map2
      (fun (si, _, pi, _, _, _) (r : run_result Exp_common.Harness.Sweep.row) ->
        (si, pi, r.Exp_common.Harness.Sweep.r_value))
      tasks srows
  in
  let agg =
    List.concat
      (List.mapi
         (fun si sc ->
           List.mapi
             (fun pi (p : Exp_common.proto) ->
               let mine =
                 List.filter_map
                   (fun (si', pi', r) ->
                     if si' = si && pi' = pi then r else None)
                   results
               in
               let arr f = Array.of_list (List.map f mine) in
               let recoveries = List.filter_map (fun r -> r.recovery_s) mine in
               let pre_m, pre_ci =
                 Exp_common.mean_ci95 (arr (fun r -> r.prefault_mbps))
               in
               let post_m, post_ci =
                 Exp_common.mean_ci95 (arr (fun r -> r.postfault_mbps))
               in
               let fair_m, fair_ci =
                 Exp_common.mean_ci95 (arr (fun r -> r.fairness_jain))
               in
               let recov_m, recov_ci =
                 Exp_common.mean_ci95 (Array.of_list recoveries)
               in
               let loss_arr = arr (fun r -> r.loss_frac) in
               {
                 scenario = sc.sid;
                 cc = p.name;
                 mean =
                   {
                     prefault_mbps = pre_m;
                     postfault_mbps = post_m;
                     recovery_s =
                       (if recoveries = [] then None else Some recov_m);
                     fairness_jain = fair_m;
                     loss_frac =
                       (if mine = [] then 0.0 else D.mean loss_arr);
                     audited_events =
                       List.fold_left
                         (fun acc r -> acc + r.audited_events)
                         0 mine;
                   };
                 pre_ci;
                 post_ci;
                 recov_ci;
                 fair_ci;
                 recovered = List.length recoveries;
                 trials = List.length mine;
               })
             protos)
         scs)
  in
  (agg, srows)

(* ---------- output ---------- *)

let json_num v =
  if Float.is_finite v then Printf.sprintf "%.4f" v else "null"

let emit_json rows failures =
  let oc = open_out "BENCH_faults.json" in
  output_string oc "{\n  \"schema\": \"pcc-proteus-bench-faults/2\",\n";
  Printf.fprintf oc "  \"code_version\": \"%s\",\n"
    (Proteus_obs.Manifest.code_version ());
  Printf.fprintf oc "  \"kernel\": \"%s\",\n" (Exp_common.kernel_name ());
  Printf.fprintf oc
    "  \"config\": {\"bandwidth_mbps\": %g, \"rtt_ms\": 30, \
     \"buffer_bytes\": 150000, \"duration_s\": %g, \"fault_start_s\": %g, \
     \"recovery_threshold\": 0.8, \"series_bin_s\": %g},\n"
    base_bw (duration ()) (fault_start ()) series_bin;
  Exp_common.emit_failed_runs oc failures;
  output_string oc "  \"results\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"scenario\": \"%s\", \"cc\": \"%s\", \"prefault_mbps\": %s, \
         \"prefault_ci95\": %s, \"postfault_mbps\": %s, \"postfault_ci95\": \
         %s, \"recovery_s\": %s, \"recovery_ci95\": %s, \"recovered\": %d, \
         \"trials\": %d, \"fairness_jain\": %s, \"fairness_ci95\": %s, \
         \"loss_frac\": %s, \"audited_events\": %d}%s\n"
        r.scenario r.cc
        (json_num r.mean.prefault_mbps)
        (json_num r.pre_ci)
        (json_num r.mean.postfault_mbps)
        (json_num r.post_ci)
        (match r.mean.recovery_s with
        | Some v -> json_num v
        | None -> "null")
        (match r.mean.recovery_s with
        | Some _ -> json_num r.recov_ci
        | None -> "null")
        r.recovered r.trials
        (json_num r.mean.fairness_jain)
        (json_num r.fair_ci)
        (json_num r.mean.loss_frac)
        r.mean.audited_events
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc

let run () =
  Exp_common.run_experiment ~seed:20_260_806 ~id:"faults"
    ~title:"Fault injection: outages, bandwidth steps, bursty loss (auditor on)"
  @@ fun () ->
  let rows, srows = sweep () in
  let failures = Exp_common.sweep_failures srows in
  let summary =
    Exp_common.Harness.Sweep.summarize ~retries:!Exp_common.retries srows
  in
  Exp_common.note_failures "faults" summary;
  let current = ref "" in
  List.iter
    (fun r ->
      if r.scenario <> !current then begin
        current := r.scenario;
        Exp_common.subheader r.scenario;
        Printf.printf "%-12s %10s %10s %10s %9s %8s\n" "cc" "pre Mb/s"
          "post Mb/s" "recov s" "jain" "loss"
      end;
      Printf.printf "%-12s %10.2f %10.2f %10s %9.3f %8.4f\n" r.cc
        r.mean.prefault_mbps r.mean.postfault_mbps
        (match r.mean.recovery_s with
        | Some v -> Printf.sprintf "%.2f" v
        | None -> "never")
        r.mean.fairness_jain r.mean.loss_frac)
    rows;
  emit_json rows failures;
  Printf.printf "\n(wrote BENCH_faults.json)\n";
  if summary.failed > 0 then
    Printf.printf "(%d of %d runs failed; see failed_runs)\n" summary.failed
      (summary.completed + summary.failed);
  [
    ("bandwidth_mbps", Printf.sprintf "%g" base_bw);
    ("rtt_ms", "30");
    ("buffer_bytes", "150000");
    ("duration_s", Printf.sprintf "%g" (duration ()));
    ("fault_start_s", Printf.sprintf "%g" (fault_start ()));
    ("scenarios", string_of_int (List.length (scenarios ())));
    ("protocols", string_of_int (List.length protos));
    ("trials", string_of_int (Exp_common.trials ()));
  ]
  @ Exp_common.outcome_params summary

(* ---------- smoke (wired into `dune runtest` via @faults-smoke) ---------- *)

(* A five-second outage scenario per congestion controller with the
   auditor attached: the link goes dark for two seconds mid-run, flows
   stop at t=4 and the last second drains every in-flight packet so
   conservation can be asserted exactly. Any invariant violation
   raises, failing the alias. *)
let smoke () =
  Exp_common.header "Faults smoke: 2 s outage inside a 5 s run, auditor on";
  let cfg =
    Link.config
      ~schedule:[ (1.5, Link.Down { duration = 2.0; flush = false }) ]
      ~bandwidth_mbps:base_bw ~rtt_ms:30.0 ~buffer_bytes:150_000 ()
  in
  (* The smoke is the trace-capable experiment: with `--trace FILE` each
     protocol's run records the full event stream (one bus per run,
     exported with a per-run label); `--metrics FILE` snapshots every
     run into one registry (flow instruments are keyed by protocol
     label, kernel counters accumulate across runs). Tracing consumes
     no randomness, so the printed numbers are identical either way. *)
  let trace_oc =
    Option.map (fun f -> (f, open_out f)) !Exp_common.trace_file
  in
  let registry =
    Option.map
      (fun f -> (f, Proteus_obs.Metrics.create ()))
      !Exp_common.metrics_file
  in
  let header_written = ref false in
  List.iter
    (fun (p : Exp_common.proto) ->
      let trace =
        match trace_oc with
        | Some _ -> Proteus_obs.Trace.create ()
        | None -> Proteus_obs.Trace.disabled
      in
      let r = Net.Runner.create ~seed:11 ~trace ~kernel:!Exp_common.kernel cfg in
      let audit = Net.Runner.attach_audit r in
      let f = Net.Runner.add_flow r ~stop:4.0 ~label:p.name ~factory:(p.make ()) in
      Net.Runner.run r ~until:5.0;
      Net.Audit.assert_quiesced audit;
      (match trace_oc with
      | Some (path, oc) ->
          if Filename.check_suffix path ".csv" then begin
            Proteus_obs.Export.write_trace_csv ~run:p.name
              ~header:(not !header_written) oc trace;
            header_written := true
          end
          else Proteus_obs.Export.write_trace_jsonl ~run:p.name oc trace
      | None -> ());
      (match registry with
      | Some (_, reg) -> Net.Runner.snapshot_metrics r reg
      | None -> ());
      let st = Net.Runner.stats f in
      Printf.printf
        "%-12s ok  (%d events audited, %d sent / %d acked / %d lost)\n" p.name
        (Net.Audit.events_checked audit)
        (Net.Flow_stats.packets_sent st)
        (Net.Flow_stats.packets_acked st)
        (Net.Flow_stats.packets_lost st))
    protos;
  (match trace_oc with
  | Some (path, oc) ->
      close_out oc;
      Printf.printf "(wrote %s)\n" path
  | None -> ());
  (match registry with
  | Some (path, reg) ->
      Proteus_obs.Export.metrics_to_file ~path reg;
      Printf.printf "(wrote %s)\n" path
  | None -> ());
  Printf.printf "faults-smoke: all %d protocols clean\n" (List.length protos)
