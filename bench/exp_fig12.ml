(* Fig. 12 + Fig. 13: the hybrid mode in adaptive video streaming.
   One 4K + three 1080p BOLA streams share a 30 ms bottleneck with a
   900 KB buffer; the bandwidth sweeps around the point where the sum of
   top bitrates (~45 + 3x10 = 75 Mbps) crosses capacity. All four
   streams run either Proteus-P or Proteus-H (threshold policy of §4.4).
   Fig. 13 repeats with BOLA forced to the highest rung. *)

module Net = Proteus_net
module Video = Proteus_video
module D = Proteus_stats.Descriptive

type arm = P | H

type outcome = {
  bitrate_4k : float;
  bitrate_1080 : float;
  rebuf_4k : float;
  rebuf_1080 : float;
}

let stream ~arm ~bandwidth_mbps ~force_highest ~seed =
  let cfg =
    Net.Link.config ~bandwidth_mbps ~rtt_ms:30.0
      ~buffer_bytes:(Net.Units.kb 900.0) ()
  in
  let r = Net.Runner.create ~seed cfg in
  let transport () =
    match arm with
    | P -> Video.Session.Plain (Proteus.Presets.proteus_p ())
    | H -> Video.Session.Hybrid
  in
  let v4k = Video.Video.make_4k ~seed:(300 + seed) ~name:"4k" () in
  let v1080s =
    List.init 3 (fun i ->
        Video.Video.make_1080p ~seed:(400 + (10 * seed) + i)
          ~name:(Printf.sprintf "1080p-%d" i) ())
  in
  let s4k =
    Video.Session.start r ~video:v4k ~force_highest ~transport:(transport ())
  in
  let s1080s =
    List.map
      (fun v ->
        Video.Session.start r ~video:v ~force_highest ~transport:(transport ()))
      v1080s
  in
  let horizon = Exp_common.pick ~fast:90.0 ~default:150.0 ~full:180.0 in
  Net.Runner.run r ~until:horizon;
  let rep4k = Video.Session.report s4k ~now:horizon in
  let reps1080 = List.map (Video.Session.report ~now:horizon) s1080s in
  let mean f xs = D.mean (Array.of_list (List.map f xs)) in
  {
    bitrate_4k = rep4k.Video.Session.avg_chunk_bitrate_mbps;
    bitrate_1080 =
      mean (fun r -> r.Video.Session.avg_chunk_bitrate_mbps) reps1080;
    rebuf_4k = 100.0 *. rep4k.Video.Session.rebuffer_ratio;
    rebuf_1080 =
      100.0 *. mean (fun r -> r.Video.Session.rebuffer_ratio) reps1080;
  }

let avg_outcome ~arm ~bandwidth_mbps ~force_highest =
  let n = Exp_common.trials () in
  let runs =
    List.init n (fun i ->
        stream ~arm ~bandwidth_mbps ~force_highest ~seed:(i + 1))
  in
  let avg f = D.mean (Array.of_list (List.map f runs)) in
  {
    bitrate_4k = avg (fun o -> o.bitrate_4k);
    bitrate_1080 = avg (fun o -> o.bitrate_1080);
    rebuf_4k = avg (fun o -> o.rebuf_4k);
    rebuf_1080 = avg (fun o -> o.rebuf_1080);
  }

let table ~force_highest ~bandwidths =
  Printf.printf
    "%-6s | %21s | %21s | %21s | %21s\n" "bw"
    "4K bitrate (H / P)" "1080p bitrate (H / P)" "4K rebuf%% (H / P)"
    "1080p rebuf%% (H / P)";
  List.iter
    (fun bw ->
      let h = avg_outcome ~arm:H ~bandwidth_mbps:bw ~force_highest in
      let p = avg_outcome ~arm:P ~bandwidth_mbps:bw ~force_highest in
      Printf.printf
        "%-6.0f | %9.2f / %9.2f | %9.2f / %9.2f | %9.2f / %9.2f | %9.2f / %9.2f\n"
        bw h.bitrate_4k p.bitrate_4k h.bitrate_1080 p.bitrate_1080 h.rebuf_4k
        p.rebuf_4k h.rebuf_1080 p.rebuf_1080)
    bandwidths

let run () =
  Exp_common.run_experiment ~id:"fig12"
    ~title:
      "Fig. 12 — hybrid mode (Proteus-H vs Proteus-P) in adaptive streaming\n\
       (1x4K + 3x1080p BOLA streams, 30 ms RTT, 900 KB buffer)"
  @@ fun () ->
  table ~force_highest:false
    ~bandwidths:(Exp_common.pick ~fast:[ 80.0; 110.0 ]
                   ~default:[ 70.0; 80.0; 90.0; 100.0; 110.0; 120.0 ]
                   ~full:[ 70.0; 80.0; 90.0; 100.0; 110.0; 120.0 ]);
  Printf.printf
    "\nShape check: Proteus-H lifts 4K bitrate (up to ~11%% in the paper)\n\
     without hurting 1080p, and cuts rebuffering for both.\n";
  Exp_common.header
    "Fig. 13 — same setup with BOLA forced to the highest bitrate";
  table ~force_highest:true
    ~bandwidths:(Exp_common.pick ~fast:[ 100.0; 130.0 ]
                   ~default:[ 90.0; 100.0; 110.0; 120.0; 130.0; 140.0 ]
                   ~full:[ 90.0; 100.0; 110.0; 120.0; 130.0; 140.0 ]);
  Printf.printf
    "\nShape check: Proteus-H's rebuffer ratio is consistently below\n\
     Proteus-P's (34%% lower at 110 Mbps in the paper).\n";
  []
