(* Bench-regression gate: compare a fresh micro run's
   [sim_seconds_per_wall_second] headline against a committed baseline
   BENCH_micro.json and fail (exit 1) when any kernel/shape pair
   regressed by more than the threshold. The threshold is generous —
   micro timings on shared CI runners are noisy — so only a real
   slowdown (or an accidentally-committed stale baseline) trips it.

     check_micro.exe BASELINE.json FRESH.json [--threshold 0.25]

   The parser is deliberately minimal (no JSON dependency): it extracts
   the flat {"key": number} pairs inside the headline object that
   bench/exp_micro.ml itself writes. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let headline path =
  let s = read_file path in
  let anchor = "\"sim_seconds_per_wall_second\"" in
  let start =
    try Str.search_forward (Str.regexp_string anchor) s 0
    with Not_found ->
      Printf.eprintf "check_micro: no %s in %s\n" anchor path;
      exit 2
  in
  let obj_start = String.index_from s start '{' + 1 in
  let obj_end = String.index_from s obj_start '}' in
  let body = String.sub s obj_start (obj_end - obj_start) in
  String.split_on_char ',' body
  |> List.filter_map (fun pair ->
         match Str.split (Str.regexp "[\"{}: \n]+") pair with
         | [ key; value ] -> (
             match float_of_string_opt value with
             | Some v -> Some (key, v)
             | None -> None)
         | _ -> None)

let () =
  let args = Array.to_list Sys.argv in
  let threshold =
    match args with
    | _ :: _ :: _ :: "--threshold" :: t :: _ -> float_of_string t
    | _ -> 0.25
  in
  let baseline_path, fresh_path =
    match args with
    | _ :: b :: f :: _ -> (b, f)
    | _ ->
        prerr_endline
          "usage: check_micro BASELINE.json FRESH.json [--threshold 0.25]";
        exit 2
  in
  let baseline = headline baseline_path in
  let fresh = headline fresh_path in
  if baseline = [] then begin
    Printf.eprintf "check_micro: empty baseline headline in %s\n" baseline_path;
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun (key, base) ->
      match List.assoc_opt key fresh with
      | None ->
          Printf.printf "  %-18s baseline %10.1f  -> MISSING from fresh run\n"
            key base;
          failed := true
      | Some f ->
          let change = (f -. base) /. base in
          let bad = change < -.threshold in
          Printf.printf "  %-18s baseline %10.1f  fresh %10.1f  (%+.1f%%)%s\n"
            key base f (100.0 *. change)
            (if bad then "  REGRESSION" else "");
          if bad then failed := true)
    baseline;
  if !failed then begin
    Printf.eprintf
      "check_micro: sim_seconds_per_wall_second regressed by more than %.0f%%\n"
      (100.0 *. threshold);
    exit 1
  end;
  Printf.printf "check_micro: headline within %.0f%% of baseline\n"
    (100.0 *. threshold)
