(* Bench-regression gate: compare a fresh run's headline object against
   a committed baseline and fail (exit 1) when any key regressed by
   more than its tolerance. Understands both headline shapes:

   - BENCH_micro.json:  "sim_seconds_per_wall_second": {kernel/shape: N}
   - BENCH_scale.json:  "flow_seconds_per_wall_second": {"scale": N}

   The default threshold is generous — timings on shared CI runners are
   noisy — so only a real slowdown (or an accidentally-committed stale
   baseline) trips it. Per-key overrides tighten or loosen individual
   entries:

     check_micro.exe BASELINE.json FRESH.json
       [--threshold 0.25] [--tol key=frac]...

   The parser is deliberately minimal (no JSON dependency): it extracts
   the flat {"key": number} pairs inside the headline object the bench
   emitters themselves write. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let anchors =
  [ "\"sim_seconds_per_wall_second\""; "\"flow_seconds_per_wall_second\"" ]

let headline path =
  let s = read_file path in
  let start =
    let rec try_anchors = function
      | [] ->
          Printf.eprintf "check_micro: no headline anchor (%s) in %s\n"
            (String.concat " / " anchors)
            path;
          exit 2
      | a :: rest -> (
          try Str.search_forward (Str.regexp_string a) s 0
          with Not_found -> try_anchors rest)
    in
    try_anchors anchors
  in
  let obj_start = String.index_from s start '{' + 1 in
  let obj_end = String.index_from s obj_start '}' in
  let body = String.sub s obj_start (obj_end - obj_start) in
  String.split_on_char ',' body
  |> List.filter_map (fun pair ->
         match Str.split (Str.regexp "[\"{}: \n]+") pair with
         | [ key; value ] -> (
             match float_of_string_opt value with
             | Some v -> Some (key, v)
             | None -> None)
         | _ -> None)

let usage () =
  prerr_endline
    "usage: check_micro BASELINE.json FRESH.json [--threshold 0.25] [--tol \
     key=frac]...";
  exit 2

let () =
  let threshold = ref 0.25 in
  let tols : (string * float) list ref = ref [] in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: t :: rest -> (
        match float_of_string_opt t with
        | Some v when v > 0.0 ->
            threshold := v;
            parse rest
        | _ ->
            Printf.eprintf "check_micro: bad --threshold %S\n" t;
            exit 2)
    | "--tol" :: kv :: rest -> (
        match String.index_opt kv '=' with
        | Some i -> (
            let key = String.sub kv 0 i in
            let frac = String.sub kv (i + 1) (String.length kv - i - 1) in
            match float_of_string_opt frac with
            | Some v when v > 0.0 ->
                tols := (key, v) :: !tols;
                parse rest
            | _ ->
                Printf.eprintf "check_micro: bad --tol fraction in %S\n" kv;
                exit 2)
        | None ->
            Printf.eprintf "check_micro: --tol expects key=frac, got %S\n" kv;
            exit 2)
    | [ ("--threshold" | "--tol") ] -> usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, fresh_path =
    match List.rev !paths with [ b; f ] -> (b, f) | _ -> usage ()
  in
  let baseline = headline baseline_path in
  let fresh = headline fresh_path in
  if baseline = [] then begin
    Printf.eprintf "check_micro: empty baseline headline in %s\n" baseline_path;
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun (key, base) ->
      let tol =
        match List.assoc_opt key !tols with Some t -> t | None -> !threshold
      in
      match List.assoc_opt key fresh with
      | None ->
          Printf.printf "  %-18s baseline %10.1f  -> MISSING from fresh run\n"
            key base;
          failed := true
      | Some f ->
          let change = (f -. base) /. base in
          let bad = change < -.tol in
          Printf.printf
            "  %-18s baseline %10.1f  fresh %10.1f  (%+.1f%%, tol %.0f%%)%s\n"
            key base f (100.0 *. change) (100.0 *. tol)
            (if bad then "  REGRESSION" else "");
          if bad then failed := true)
    baseline;
  if !failed then begin
    Printf.eprintf "check_micro: headline regressed beyond tolerance\n";
    exit 1
  end;
  Printf.printf "check_micro: headline within tolerance of baseline\n"
