(* Fig. 5: Jain's fairness index with n same-protocol flows on a
   20n Mbps / 30 ms / 300n KB bottleneck, flows staggered so latecomer
   effects show. Fig. 17/18 (Appendix B) add LEDBAT-25 and the 4-flow
   throughput-over-time traces. *)

module Net = Proteus_net
module D = Proteus_stats.Descriptive

let flow_counts () =
  Exp_common.pick ~fast:[ 2; 6 ] ~default:[ 2; 4; 6; 8; 10 ]
    ~full:[ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let stagger () = Exp_common.pick ~fast:10.0 ~default:15.0 ~full:20.0
let measure () = Exp_common.pick ~fast:60.0 ~default:100.0 ~full:200.0

let fairness (p : Exp_common.proto) ~n ~seed =
  let bw = 20.0 *. float_of_int n in
  let cfg =
    Net.Link.config ~bandwidth_mbps:bw ~rtt_ms:30.0
      ~buffer_bytes:(Net.Units.kb (300.0 *. float_of_int n)) ()
  in
  let r = Net.Runner.create ~seed cfg in
  let flows =
    List.init n (fun i ->
        Net.Runner.add_flow r
          ~start:(stagger () *. float_of_int i)
          ~label:(Printf.sprintf "f%d" i)
          ~factory:(p.Exp_common.make ()))
  in
  let t0 = stagger () *. float_of_int n in
  let t1 = t0 +. measure () in
  Net.Runner.run r ~until:t1;
  let tputs =
    Array.of_list
      (List.map
         (fun f -> Net.Flow_stats.throughput_mbps (Net.Runner.stats f) ~t0 ~t1)
         flows)
  in
  D.jain_index tputs

let traces () =
  (* Fig. 18: 4-flow throughput across time for the two LEDBAT targets
     and the two Proteus modes. *)
  Exp_common.subheader "Fig. 18 — 4-flow throughput traces (Mbps, 10 s bins)";
  List.iter
    (fun (p : Exp_common.proto) ->
      let n = 4 in
      let cfg =
        Net.Link.config ~bandwidth_mbps:80.0 ~rtt_ms:30.0
          ~buffer_bytes:(Net.Units.kb 1200.0) ()
      in
      let r = Net.Runner.create ~seed:3 cfg in
      let flows =
        List.init n (fun i ->
            Net.Runner.add_flow r
              ~start:(30.0 *. float_of_int i)
              ~label:(Printf.sprintf "f%d" i)
              ~factory:(p.Exp_common.make ()))
      in
      let horizon = Exp_common.pick ~fast:200.0 ~default:300.0 ~full:500.0 in
      Net.Runner.run r ~until:horizon;
      Printf.printf "%s:\n" p.Exp_common.name;
      List.iteri
        (fun i f ->
          let series =
            Net.Flow_stats.throughput_series (Net.Runner.stats f) ~bin:10.0
              ~until:horizon
          in
          Printf.printf "  f%d:" i;
          Array.iter (fun (_, m) -> Printf.printf "%6.1f" m) series;
          print_newline ())
        flows)
    [ Exp_common.ledbat_25; Exp_common.ledbat_100; Exp_common.proteus_p;
      Exp_common.proteus_s ]

let run ?(appendix = false) () =
  let title =
    if appendix then
      "Fig. 17+18 (Appendix B) — multi-flow fairness incl. LEDBAT-25"
    else "Fig. 5 — Jain's fairness index, n same-protocol flows"
  in
  Exp_common.run_experiment
    ~id:(if appendix then "figB-fairness" else "fig5")
    ~title:(title ^ "\n(20n Mbps, 30 ms RTT, 300n KB buffer, staggered starts)")
  @@ fun () ->
  let lineup = if appendix then Exp_common.lineup_b else Exp_common.lineup in
  let counts = flow_counts () in
  Printf.printf "%-12s" "protocol";
  List.iter (fun n -> Printf.printf "  n=%-4d" n) counts;
  print_newline ();
  let rows =
    Exp_common.par_map
      (fun (p : Exp_common.proto) ->
        (p, List.map (fun n -> fairness p ~n ~seed:1) counts))
      lineup
  in
  List.iter
    (fun ((p : Exp_common.proto), row) ->
      Printf.printf "%-12s" p.Exp_common.name;
      List.iter (fun j -> Printf.printf "  %.3f " j) row;
      print_newline ())
    rows;
  Printf.printf
    "\nShape check: primaries stay ~0.97+; Proteus-S stays well above\n\
     LEDBAT at every n; LEDBAT declines with n (latecomer unfairness)\n\
     and LEDBAT-25 is worse than LEDBAT-100.\n";
  if appendix then traces ();
  []
