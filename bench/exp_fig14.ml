(* Fig. 14: extending RTT deviation to BBR (§7.1). BBR-S competes with
   BBR, with another BBR-S, and with CUBIC on the 50 Mbps / 30 ms /
   375 KB link; throughput-vs-time traces show BBR-S yielding to the
   primaries while sharing fairly with itself. *)

module Net = Proteus_net

let trace ~label ~(primary : Exp_common.proto) =
  let cfg = Exp_common.emulab_cfg () in
  let r = Net.Runner.create ~seed:4 cfg in
  let p =
    Net.Runner.add_flow r ~label:"primary" ~factory:(primary.Exp_common.make ())
  in
  let s =
    Net.Runner.add_flow r ~start:10.0 ~label:"bbr-s"
      ~factory:(Exp_common.bbr_s.Exp_common.make ())
  in
  let horizon = Exp_common.pick ~fast:80.0 ~default:150.0 ~full:200.0 in
  Net.Runner.run r ~until:horizon;
  Printf.printf "\n%s (Mbps per 10 s bin):\n" label;
  let print_series name f =
    let series =
      Net.Flow_stats.throughput_series (Net.Runner.stats f) ~bin:10.0
        ~until:horizon
    in
    Printf.printf "  %-8s" name;
    Array.iter (fun (_, m) -> Printf.printf "%6.1f" m) series;
    print_newline ()
  in
  print_series primary.Exp_common.name p;
  print_series "bbr-s" s;
  let t0 = horizon /. 3.0 in
  let tp = Net.Flow_stats.throughput_mbps (Net.Runner.stats p) ~t0 ~t1:horizon in
  let ts = Net.Flow_stats.throughput_mbps (Net.Runner.stats s) ~t0 ~t1:horizon in
  Printf.printf "  steady-state: %s %.1f Mbps, bbr-s %.1f Mbps\n"
    primary.Exp_common.name tp ts

let run () =
  Exp_common.run_experiment ~id:"fig14"
    ~title:
      "Fig. 14 — BBR-S (RTT-deviation-yielding BBR) throughput traces\n\
       (50 Mbps, 30 ms RTT, 375 KB buffer; scavenger joins at t=10 s)"
  @@ fun () ->
  trace ~label:"BBR vs BBR-S" ~primary:Exp_common.bbr;
  trace ~label:"BBR-S vs BBR-S" ~primary:Exp_common.bbr_s;
  trace ~label:"CUBIC vs BBR-S" ~primary:Exp_common.cubic;
  Printf.printf
    "\nShape check: BBR-S yields against BBR and CUBIC while sharing\n\
     roughly fairly with another BBR-S. (Threshold recalibrated to the\n\
     simulator's noise floor — see DESIGN.md.)\n";
  []
