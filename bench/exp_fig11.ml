(* Fig. 11: application benchmarks with a background scavenger on a
   100 Mbps access link.
   (a) DASH video: 1/2/4/8 concurrent BOLA streams (CUBIC transport, as
       dash.js-over-TCP), with no background flow, or a background
       Proteus-S / LEDBAT / CUBIC bulk flow. Metric: mean chunk bitrate.
   (b) Web: Poisson page loads (1 per 10 s) over CUBIC with the same
       background options. Metric: page load time CDF. *)

module Net = Proteus_net
module Video = Proteus_video
module Web = Proteus_web
module D = Proteus_stats.Descriptive

let backgrounds =
  [
    ("none", None);
    ("proteus-s", Some Exp_common.proteus_s);
    ("ledbat", Some Exp_common.ledbat_100);
    ("cubic", Some Exp_common.cubic);
  ]

(* A Big-Buck-Bunny-style ladder topping at 16 Mbps, matching the
   bitrate range of the paper's Fig. 11a y-axis. *)
let bbb i =
  Video.Video.make_custom
    ~name:(Printf.sprintf "bbb-%d" i)
    ~chunk_duration:3.0
    ~bitrates_mbps:[| 0.5; 1.0; 2.0; 3.0; 4.5; 7.0; 10.0; 12.0; 16.0 |]
    ~n_chunks:200

let access_cfg () =
  Net.Link.config ~bandwidth_mbps:100.0 ~rtt_ms:30.0
    ~buffer_bytes:(Net.Units.kb 900.0) ()

let dash ~n_videos ~background =
  let r = Net.Runner.create ~seed:5 (access_cfg ()) in
  (match background with
  | Some (bg : Exp_common.proto) ->
      ignore
        (Net.Runner.add_flow r ~label:"background"
           ~factory:(bg.Exp_common.make ()))
  | None -> ());
  let sessions =
    List.init n_videos (fun i ->
        Video.Session.start r ~video:(bbb i) ~startup_offset:2.0
          ~transport:(Video.Session.Plain (Proteus_cc.Cubic.factory ())))
  in
  let horizon = Exp_common.pick ~fast:60.0 ~default:120.0 ~full:180.0 in
  Net.Runner.run r ~until:horizon;
  let reports = List.map (Video.Session.report ~now:horizon) sessions in
  D.mean
    (Array.of_list
       (List.map (fun rep -> rep.Video.Session.avg_chunk_bitrate_mbps) reports))

let web ~background =
  let r = Net.Runner.create ~seed:6 (access_cfg ()) in
  (match background with
  | Some (bg : Exp_common.proto) ->
      ignore
        (Net.Runner.add_flow r ~label:"background"
           ~factory:(bg.Exp_common.make ()))
  | None -> ());
  let horizon = Exp_common.pick ~fast:120.0 ~default:300.0 ~full:600.0 in
  let results =
    Web.Load_test.run r
      ~pages:(Web.Page.corpus ~n:30 ())
      ~factory:(Proteus_cc.Cubic.factory ())
      ~request_rate_per_sec:0.1 ~from_time:5.0 ~until:(horizon -. 20.0)
  in
  Net.Runner.run r ~until:horizon;
  Web.Load_test.load_times !results

let run () =
  Exp_common.run_experiment ~id:"fig11"
    ~title:
      "Fig. 11 — application benchmarks with a background scavenger\n\
       (100 Mbps access link, 30 ms RTT)"
  @@ fun () ->
  Exp_common.subheader "(a) DASH mean chunk bitrate (Mbps) vs #videos";
  let counts = [ 1; 2; 4; 8 ] in
  Printf.printf "%-18s" "background";
  List.iter (fun n -> Printf.printf "%8d" n) counts;
  print_newline ();
  List.iter
    (fun (name, bg) ->
      Printf.printf "%-18s" ("DASH + " ^ name);
      List.iter
        (fun n -> Printf.printf "%8.2f" (dash ~n_videos:n ~background:bg))
        counts;
      print_newline ())
    backgrounds;
  Exp_common.subheader "(b) Page load time (seconds)";
  List.iter
    (fun (name, bg) ->
      let plts = web ~background:bg in
      if Array.length plts = 0 then
        Printf.printf "%-18s (no completed loads)\n" ("Chrome + " ^ name)
      else begin
        Printf.printf "%-18s n=%3d mean=%6.2f " ("Chrome + " ^ name)
          (Array.length plts) (D.mean plts);
        Exp_common.print_cdf "" plts
      end)
    backgrounds;
  Printf.printf
    "\nShape check: Proteus-S in the background is nearly invisible to\n\
     both applications; LEDBAT noticeably degrades them (2.5x lower DASH\n\
     bitrate at 8 videos in the paper); CUBIC is worst.\n";
  []
