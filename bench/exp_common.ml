(* Shared machinery for the paper-reproduction experiments: the
   protocol registry, standard single-flow and two-flow runs, trial
   averaging, and output formatting. *)

module Net = Proteus_net
module Stats = Proteus_stats
module Pool = Proteus_parallel.Pool
module D = Stats.Descriptive

(* ---------- global scaling ---------- *)

type scale = Fast | Default | Full

let scale = ref Default

let pick ~fast ~default ~full =
  match !scale with Fast -> fast | Default -> default | Full -> full

(* `--trials N` overrides the scale-derived trial count (clamped to 64
   by the CLI: the sweeps' [Rng.split_at] key spaces reserve 64 slots
   per trial index). *)
let trials_override : int option ref = ref None

let trials () =
  match !trials_override with
  | Some n -> n
  | None -> pick ~fast:1 ~default:3 ~full:10

let single_duration () = pick ~fast:25.0 ~default:60.0 ~full:100.0
let pair_duration () = pick ~fast:40.0 ~default:80.0 ~full:140.0

(* `--shards N`: shard count for the intra-trial sharded experiments
   (exp_scale). Results are byte-identical for any value (see
   lib/net/shard.mli); the knob only trades wall-clock. *)
let shards = ref 4

let scale_name () =
  match !scale with Fast -> "fast" | Default -> "default" | Full -> "full"

(* `--kernel wheel|heap`: event-kernel backend for every runner the
   experiments construct. The default (heap) path is the byte-identity
   reference; the wheel kernel is the perf configuration and fires the
   same schedule in the same order (see lib/eventsim/sim.mli). *)
let kernel = ref Proteus_eventsim.Sim.Heap_kernel

let kernel_name () =
  match !kernel with
  | Proteus_eventsim.Sim.Heap_kernel -> "heap"
  | Proteus_eventsim.Sim.Wheel_kernel -> "wheel"

(* ---------- observability ---------- *)

(* `--trace FILE` / `--metrics FILE`: experiments that support per-run
   tracing (the faults smoke) export the bus / a metrics snapshot to
   these paths. JSONL unless the trace path ends in `.csv`. *)
let trace_file : string option ref = ref None
let metrics_file : string option ref = ref None

(* One manifest next to each experiment's output, recording what
   produced it. Execution details (`--jobs`) are deliberately excluded
   so CI's determinism gate can byte-compare manifests across fan-out
   widths; the scale knob changes the numbers, so it is included. *)
let emit_manifest ?seed ?(params = []) ?metrics ?registry id =
  let path = "MANIFEST_" ^ id ^ ".json" in
  (* The kernel choice is a first-class manifest field (and stays in
     params for older consumers): every run records which event-kernel
     backend produced it. *)
  Proteus_obs.Manifest.write ~path ~run:id ?seed ~scenario:id
    ~kernel:(kernel_name ())
    ~params:(("scale", scale_name ()) :: ("kernel", kernel_name ()) :: params)
    ?metrics ?registry ();
  Printf.printf "(wrote %s)\n" path

(* ---------- resilient supervision ---------- *)

module Harness = Proteus_harness

(* `--resume` / `--retries` / `--wall-budget` / `--stall-budget` /
   `--event-budget` / `--inject KIND:RUN_ID`: the sweep experiments
   (faults, topology, scale) run every simulation under the
   lib/harness supervisor. With no knobs set the supervisor is inert —
   byte-identical outputs — but a crashing, stalling or over-budget run
   degrades its own row instead of killing the whole sweep. *)

let resume = ref false
let retries = ref 0
let wall_budget : float option ref = ref None
let stall_budget : float option ref = ref None
let event_budget : int option ref = ref None
let injections : (string * Harness.Sweep.inject) list ref = ref []

let supervision_budget () =
  {
    Harness.Supervisor.max_events = !event_budget;
    max_sim_time = None;
    wall_s = !wall_budget;
    stall_s = !stall_budget;
  }

let sweep_config ~journal ~params =
  {
    Harness.Sweep.default with
    budget = supervision_budget ();
    retries = !retries;
    journal = Some journal;
    resume = !resume;
    params = Harness.Journal.params_hash params;
    injections = !injections;
  }

(* Arm the enclosing supervised run's budgets on a runner's sim. A
   no-op outside a supervised task, so experiments arm unconditionally. *)
let arm = Harness.Supervisor.arm_runner

(* Experiments report their failed runs here; main.exe turns a
   non-empty ledger into a one-line stderr summary and the degraded
   exit code (2). *)
let degraded : (string * Harness.Sweep.summary) list ref = ref []

let note_failures id (s : Harness.Sweep.summary) =
  if s.failed > 0 then degraded := (id, s) :: !degraded

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The explicit failed-runs section every sweep's BENCH json carries:
   an empty array on a clean sweep (so clean outputs are stable), one
   entry per degraded run otherwise. *)
let emit_failed_runs oc (failures : Harness.Sweep.failure list) =
  match failures with
  | [] -> output_string oc "  \"failed_runs\": [],\n"
  | fs ->
      output_string oc "  \"failed_runs\": [\n";
      List.iteri
        (fun i (f : Harness.Sweep.failure) ->
          Printf.fprintf oc
            "    {\"run\": \"%s\", \"outcome\": \"%s\", \"detail\": \"%s\", \
             \"attempts\": %d}%s\n"
            (json_escape f.f_run) (json_escape f.f_outcome)
            (json_escape f.f_detail) f.f_attempts
            (if i = List.length fs - 1 then "" else ","))
        fs;
      output_string oc "  ],\n"

(* Failures list + summary from a sweep's rows; every experiment
   reports through this so the ledger and manifests stay consistent. *)
let sweep_failures rows =
  List.filter_map (fun (r : _ Harness.Sweep.row) -> r.r_failure) rows

let outcome_params (s : Harness.Sweep.summary) =
  [
    ("runs_completed", string_of_int s.completed);
    ("runs_failed", string_of_int s.failed);
    ("runs_quarantined", string_of_int s.quarantined);
    ("runs_resumed", string_of_int s.resumed);
  ]

(* ---------- multicore fan-out ---------- *)

(* Worker pool shared by every experiment; sized by `--jobs N`
   (default 1 = fully sequential). Trials and protocol sweeps are pure
   functions of their seeds and [par_map] preserves input order, so the
   parallel results are bit-identical to the sequential ones. *)

let jobs = ref 1
let pool : Pool.t option ref = ref None

let set_jobs n =
  let n = max 1 n in
  jobs := n;
  (match !pool with Some p -> Pool.shutdown p | None -> ());
  pool := (if n > 1 then Some (Pool.create ~jobs:n) else None)

let shutdown_pool () =
  (match !pool with Some p -> Pool.shutdown p | None -> ());
  pool := None

let par_map f xs =
  match !pool with Some p -> Pool.map p f xs | None -> List.map f xs

(* Supervised fan-out: Sweep.map over the shared pool. Each task runs
   under the supervisor (crash isolation, budgets, retries) and
   completions are journaled for --resume. *)
let sup_map cfg ~run_id ~seed_of ~encode ~decode f keys =
  Harness.Sweep.map cfg
    ~pool_map:(fun g xs -> par_map g xs)
    ~run_id ~seed_of ~encode ~decode f keys

(* ---------- protocol registry ---------- *)

type proto = { name : string; make : unit -> Net.Sender.factory }

let cubic = { name = "cubic"; make = (fun () -> Proteus_cc.Cubic.factory ()) }
let bbr = { name = "bbr"; make = (fun () -> Proteus_cc.Bbr.factory ()) }
let copa = { name = "copa"; make = (fun () -> Proteus_cc.Copa.factory ()) }
let vivace = { name = "vivace"; make = (fun () -> Proteus.Presets.vivace ()) }

let proteus_p =
  { name = "proteus-p"; make = (fun () -> Proteus.Presets.proteus_p ()) }

let proteus_s =
  { name = "proteus-s"; make = (fun () -> Proteus.Presets.proteus_s ()) }

let ledbat_100 =
  { name = "ledbat-100"; make = (fun () -> Proteus_cc.Ledbat.factory ()) }

let ledbat_25 =
  {
    name = "ledbat-25";
    make =
      (fun () -> Proteus_cc.Ledbat.factory ~params:Proteus_cc.Ledbat.draft_25ms ());
  }

let bbr_s =
  { name = "bbr-s"; make = (fun () -> Proteus_cc.Bbr.scavenger_factory ()) }

(* Fig. 3/4/5 single-protocol lineup (paper order). *)
let lineup = [ proteus_s; ledbat_100; cubic; bbr; proteus_p; copa; vivace ]
let lineup_b = [ proteus_s; ledbat_25; ledbat_100; cubic; bbr; proteus_p; copa; vivace ]
let primaries = [ bbr; cubic; copa; proteus_p; vivace ]

(* ---------- standard links ---------- *)

let emulab_cfg ?loss_rate ?noise ?(bandwidth_mbps = 50.0) ?(rtt_ms = 30.0)
    ?(buffer_bytes = 375_000) () =
  Net.Link.config ?loss_rate ?noise ~bandwidth_mbps ~rtt_ms ~buffer_bytes ()

(* ---------- single-flow run ---------- *)

type single_summary = {
  tput_mbps : float;
  p95_rtt : float;
  loss_frac : float;
}

let single_run ?(seed = 1) ?loss_rate ?noise ?(bandwidth_mbps = 50.0)
    ?(rtt_ms = 30.0) ?(buffer_bytes = 375_000) factory =
  let duration = single_duration () in
  let warmup = duration /. 3.0 in
  let cfg = emulab_cfg ?loss_rate ?noise ~bandwidth_mbps ~rtt_ms ~buffer_bytes () in
  let r = Net.Runner.create ~seed ~kernel:!kernel cfg in
  let f = Net.Runner.add_flow r ~label:"single" ~factory in
  Net.Runner.run r ~until:duration;
  let st = Net.Runner.stats f in
  {
    tput_mbps = Net.Flow_stats.throughput_mbps st ~t0:warmup ~t1:duration;
    p95_rtt =
      Option.value ~default:0.0
        (Net.Flow_stats.rtt_percentile st ~t0:warmup ~t1:duration ~p:95.0);
    loss_frac = Net.Flow_stats.loss_fraction st;
  }

let avg_trials n f =
  let xs = par_map f (List.init n (fun i -> i + 1)) in
  D.mean (Array.of_list xs)

(* Mean and normal-approximation 95% confidence half-width
   (1.96 * s / sqrt n, with s the sample standard deviation). The
   half-width is 0 for fewer than two samples — a single trial carries
   no spread information. *)
let mean_ci95 xs =
  let n = Array.length xs in
  if n = 0 then (0.0, 0.0)
  else
    let mean = D.mean xs in
    if n < 2 then (mean, 0.0)
    else begin
      let nf = float_of_int n in
      let sq = ref 0.0 in
      Array.iter
        (fun x ->
          let d = x -. mean in
          sq := !sq +. (d *. d))
        xs;
      let sample_var = !sq /. (nf -. 1.0) in
      (mean, 1.96 *. sqrt sample_var /. sqrt nf)
    end

let single_avg ?loss_rate ?noise ?bandwidth_mbps ?rtt_ms ?buffer_bytes
    (p : proto) =
  avg_trials (trials ()) (fun seed ->
      (single_run ~seed ?loss_rate ?noise ?bandwidth_mbps ?rtt_ms ?buffer_bytes
         (p.make ()))
        .tput_mbps)

(* ---------- two-flow (scavenger vs primary) run ---------- *)

type pair_summary = {
  alone_tput : float;  (* primary running alone *)
  with_tput : float;  (* primary with the scavenger *)
  scav_tput : float;
  ratio : float;  (* with / alone *)
  utilization : float;  (* (with + scav) / capacity *)
  alone_p95 : float;
  with_p95 : float;
  rtt_ratio : float;  (* with_p95 / alone_p95 *)
}

let pair_run ?(seed = 1) ?loss_rate ?noise ?(bandwidth_mbps = 50.0)
    ?(rtt_ms = 30.0) ?(buffer_bytes = 375_000) ~primary ~scavenger () =
  let duration = pair_duration () in
  let scav_start = duration /. 6.0 in
  let t0 = duration /. 3.0 in
  let cfg = emulab_cfg ?loss_rate ?noise ~bandwidth_mbps ~rtt_ms ~buffer_bytes () in
  let r1 = Net.Runner.create ~seed ~kernel:!kernel cfg in
  let p1 = Net.Runner.add_flow r1 ~label:"primary" ~factory:(primary ()) in
  Net.Runner.run r1 ~until:duration;
  let st1 = Net.Runner.stats p1 in
  let alone_tput = Net.Flow_stats.throughput_mbps st1 ~t0 ~t1:duration in
  let alone_p95 =
    Option.value ~default:0.0
      (Net.Flow_stats.rtt_percentile st1 ~t0 ~t1:duration ~p:95.0)
  in
  let r2 = Net.Runner.create ~seed:(seed + 1000) ~kernel:!kernel cfg in
  let p2 = Net.Runner.add_flow r2 ~label:"primary" ~factory:(primary ()) in
  let s2 =
    Net.Runner.add_flow r2 ~start:scav_start ~label:"scavenger"
      ~factory:(scavenger ())
  in
  Net.Runner.run r2 ~until:duration;
  let with_tput =
    Net.Flow_stats.throughput_mbps (Net.Runner.stats p2) ~t0 ~t1:duration
  in
  let with_p95 =
    Option.value ~default:0.0
      (Net.Flow_stats.rtt_percentile (Net.Runner.stats p2) ~t0 ~t1:duration
         ~p:95.0)
  in
  let scav_tput =
    Net.Flow_stats.throughput_mbps (Net.Runner.stats s2) ~t0 ~t1:duration
  in
  {
    alone_tput;
    with_tput;
    scav_tput;
    ratio = (if alone_tput > 0.0 then with_tput /. alone_tput else 0.0);
    utilization = (with_tput +. scav_tput) /. bandwidth_mbps;
    alone_p95;
    with_p95;
    rtt_ratio = (if alone_p95 > 0.0 then with_p95 /. alone_p95 else 0.0);
  }

let pair_avg ?loss_rate ?noise ?bandwidth_mbps ?rtt_ms ?buffer_bytes ~primary
    ~scavenger () =
  let n = trials () in
  let runs =
    par_map
      (fun i ->
        pair_run ~seed:((i * 17) + 1) ?loss_rate ?noise ?bandwidth_mbps ?rtt_ms
          ?buffer_bytes ~primary:primary.make ~scavenger:scavenger.make ())
      (List.init n (fun i -> i))
  in
  let avg f = D.mean (Array.of_list (List.map f runs)) in
  {
    alone_tput = avg (fun r -> r.alone_tput);
    with_tput = avg (fun r -> r.with_tput);
    scav_tput = avg (fun r -> r.scav_tput);
    ratio = avg (fun r -> r.ratio);
    utilization = avg (fun r -> r.utilization);
    alone_p95 = avg (fun r -> r.alone_p95);
    with_p95 = avg (fun r -> r.with_p95);
    rtt_ratio = avg (fun r -> r.rtt_ratio);
  }

(* ---------- output ---------- *)

let header title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n"

let subheader s = Printf.printf "\n--- %s ---\n" s

let print_cdf label values =
  let pct p = D.percentile values ~p in
  Printf.printf "%-24s p10=%7.3f p25=%7.3f p50=%7.3f p75=%7.3f p90=%7.3f\n"
    label (pct 10.0) (pct 25.0) (pct 50.0) (pct 75.0) (pct 90.0)

(* ---------- standard experiment shell ---------- *)

(* Banner, body, manifest — the frame every [Exp_*.run] shares. The
   body returns the manifest's extra params so values computed during
   the run (scenario counts, effective durations) can be recorded
   without precomputing them; most experiments return []. *)
let run_experiment ?seed ~id ~title body =
  header title;
  let params = body () in
  emit_manifest ?seed ~params id
