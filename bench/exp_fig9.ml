(* Fig. 9 + Fig. 10 (and Appendix B Fig. 21/22): performance over noisy
   "WiFi" paths. The paper measures 64 real source-destination pairs
   (4 WiFi uplinks x 16 AWS regions); we emulate a population of paths
   with the WiFi noise model and randomized bandwidth / base RTT.

   Fig. 9: single-flow throughput per path, normalized by the best
   protocol on that path — CDF across paths.
   Fig. 10: two-flow yield test per path — CDF of the primary
   throughput ratio vs Proteus-S and vs LEDBAT. *)

module Net = Proteus_net
module Stats = Proteus_stats
module D = Stats.Descriptive

type path = { bw : float; rtt : float; buffer : int; seed : int }

let paths () =
  let n = Exp_common.pick ~fast:8 ~default:16 ~full:64 in
  let rng = Stats.Rng.create ~seed:2024 in
  List.init n (fun i ->
      let bw = Stats.Rng.uniform rng ~lo:20.0 ~hi:120.0 in
      let rtt = Stats.Rng.uniform rng ~lo:20.0 ~hi:80.0 in
      let bdp = Net.Units.bdp_bytes ~bandwidth_mbps:bw ~rtt_ms:rtt in
      {
        bw;
        rtt;
        buffer = int_of_float (Stats.Rng.uniform rng ~lo:1.0 ~hi:2.5 *. bdp);
        seed = 100 + i;
      })

let duration () = Exp_common.pick ~fast:30.0 ~default:60.0 ~full:120.0

let single_tput (p : Exp_common.proto) (path : path) =
  let cfg =
    Net.Link.config ~noise:Net.Noise.default_wifi ~bandwidth_mbps:path.bw
      ~rtt_ms:path.rtt ~buffer_bytes:path.buffer ()
  in
  let r = Net.Runner.create ~seed:path.seed cfg in
  let f = Net.Runner.add_flow r ~label:"x" ~factory:(p.Exp_common.make ()) in
  let dur = duration () in
  Net.Runner.run r ~until:dur;
  Net.Flow_stats.throughput_mbps (Net.Runner.stats f) ~t0:(dur /. 3.0) ~t1:dur

let fig9 ~lineup =
  Exp_common.subheader
    "Fig. 9 — single flow on WiFi paths: normalized throughput CDF";
  let ps = paths () in
  let raw =
    List.map (fun p -> (p, List.map (fun path -> single_tput p path) ps)) lineup
  in
  (* Normalize per path by the best protocol on that path. *)
  let n_paths = List.length ps in
  let best =
    List.init n_paths (fun i ->
        List.fold_left
          (fun acc (_, tputs) -> Float.max acc (List.nth tputs i))
          0.0 raw)
  in
  List.iter
    (fun ((p : Exp_common.proto), tputs) ->
      let normalized =
        Array.of_list
          (List.mapi
             (fun i t ->
               let b = List.nth best i in
               if b > 0.0 then t /. b else 0.0)
             tputs)
      in
      Exp_common.print_cdf p.Exp_common.name normalized)
    raw;
  Printf.printf
    "Shape check: CUBIC/BBR top (aggressive); COPA and Vivace lowest\n\
     (noise-sensitive); Proteus-P/-S competitive within their classes.\n"

let yield_ratio ~(primary : Exp_common.proto) ~(scavenger : Exp_common.proto)
    (path : path) =
  let r =
    Exp_common.pair_run ~seed:path.seed ~noise:Net.Noise.default_wifi
      ~bandwidth_mbps:path.bw ~rtt_ms:path.rtt ~buffer_bytes:path.buffer
      ~primary:primary.Exp_common.make ~scavenger:scavenger.Exp_common.make ()
  in
  r.Exp_common.ratio

let fig10 ~scavengers =
  Exp_common.subheader
    "Fig. 10 — primary throughput ratio on WiFi paths (CDF)";
  let ps = paths () in
  List.iter
    (fun (primary : Exp_common.proto) ->
      Printf.printf "%s as primary:\n" primary.Exp_common.name;
      List.iter
        (fun (scav : Exp_common.proto) ->
          let ratios =
            Array.of_list
              (List.map (fun path -> yield_ratio ~primary ~scavenger:scav path) ps)
          in
          Exp_common.print_cdf ("  vs " ^ scav.Exp_common.name) ratios)
        scavengers)
    Exp_common.primaries;
  Printf.printf
    "Shape check: vs Proteus-S every primary's ratio CDF sits right of\n\
     the LEDBAT curve; biggest gains for latency-aware primaries.\n"

let run ?(appendix = false) () =
  Exp_common.run_experiment
    ~id:(if appendix then "figB-wifi" else "fig9")
    ~title:
      (if appendix then
         "Fig. 21+22 (Appendix B) — WiFi performance incl. LEDBAT-25"
       else "Fig. 9+10 — real-world-style WiFi evaluation (emulated)")
  @@ fun () ->
  if appendix then begin
    fig9 ~lineup:Exp_common.lineup_b;
    fig10 ~scavengers:[ Exp_common.proteus_s; Exp_common.ledbat_25;
                        Exp_common.ledbat_100 ]
  end
  else begin
    fig9 ~lineup:Exp_common.lineup;
    fig10 ~scavengers:[ Exp_common.proteus_s; Exp_common.ledbat_100 ]
  end;
  []
