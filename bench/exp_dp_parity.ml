(* Datapath parity gate: the faults-smoke outage scenario (plus a
   chaos-impaired dumbbell and a 3-hop chain) reruns with each
   monolithic controller swapped for its fold-program twin, under both
   event kernels, and the full-precision flow digests must be
   byte-identical. Writes the two digest files CI compares with `cmp`
   (DP_digest_monolithic.txt / DP_digest_datapath.txt) and fails the
   process immediately on any in-process mismatch, so a local
   `main.exe dp-parity` is the same gate. *)

module Net = Proteus_net
module Link = Net.Link
module Topology = Net.Topology
module Sim = Proteus_eventsim.Sim

let fmt_f v = Printf.sprintf "%.17g" v

let flow_digest f =
  let st = Net.Runner.stats f in
  let rtts = Net.Flow_stats.rtt_samples st ~t0:0.0 ~t1:infinity in
  let rtt_sum = Array.fold_left ( +. ) 0.0 rtts in
  Printf.sprintf
    "%s sent=%d acked=%d lost=%d dup=%d bytes=%s rtt_n=%d rtt_sum=%s first=%s \
     last=%s"
    (Net.Runner.label f)
    (Net.Flow_stats.packets_sent st)
    (Net.Flow_stats.packets_acked st)
    (Net.Flow_stats.packets_lost st)
    (Net.Flow_stats.packets_dup_acked st)
    (fmt_f (Net.Flow_stats.bytes_acked st))
    (Array.length rtts) (fmt_f rtt_sum)
    (match Net.Flow_stats.first_ack_time st with
    | Some t -> fmt_f t
    | None -> "-")
    (match Net.Flow_stats.last_ack_time st with
    | Some t -> fmt_f t
    | None -> "-")

(* The faults-smoke link: 2 s hard outage inside a 5 s run. *)
let outage_cfg () =
  Link.config
    ~schedule:[ (1.5, Link.Down { duration = 2.0; flush = false }) ]
    ~bandwidth_mbps:20.0 ~rtt_ms:30.0 ~buffer_bytes:150_000 ()

(* Reordering, duplication, bursty loss, an outage and a bandwidth
   step: every sender event path (ack / dup-ack / loss) feeds the
   folds. *)
let chaos_cfg () =
  Link.config ~reorder_prob:0.05 ~dup_prob:0.02
    ~loss:
      (Link.Gilbert_elliott
         { p_good_bad = 0.02; p_bad_good = 0.3; loss_good = 0.0; loss_bad = 0.4 })
    ~schedule:
      [
        (2.0, Link.Down { duration = 1.0; flush = false });
        (3.5, Link.Set_bandwidth 5.0);
      ]
    ~bandwidth_mbps:20.0 ~rtt_ms:30.0 ~buffer_bytes:150_000 ()

let chain_links () =
  [
    Link.config ~bandwidth_mbps:30.0 ~rtt_ms:10.0 ~buffer_bytes:120_000 ();
    Link.config ~loss_rate:0.01 ~bandwidth_mbps:12.0 ~rtt_ms:20.0
      ~buffer_bytes:90_000 ();
    Link.config ~bandwidth_mbps:25.0 ~rtt_ms:10.0 ~buffer_bytes:120_000 ();
  ]

(* Two flows of the protocol under test share the bottleneck (smoke
   shape); they stop a second before the horizon so the auditor can
   assert full conservation at the end. *)
let run_scenario ~kernel ~seed ~topo ~route factory =
  let r = Net.Runner.create_topo ~seed ~kernel topo in
  let a = Net.Runner.add_flow r ~stop:4.0 ?route ~label:"a" ~factory in
  let b =
    Net.Runner.add_flow r ~start:0.5 ~stop:4.0 ?route ~label:"b" ~factory
  in
  let audit = Net.Runner.attach_audit r in
  Net.Runner.run r ~until:5.5;
  Net.Audit.assert_quiesced audit;
  flow_digest a ^ " | " ^ flow_digest b

let scenarios () =
  let dumbbell cfg = (Topology.dumbbell cfg, None) in
  let chain () =
    let topo = Topology.chain (chain_links ()) in
    (topo, Some (Topology.chain_route topo))
  in
  [
    ("outage", dumbbell (outage_cfg ()));
    ("chaos", dumbbell (chaos_cfg ()));
    ("chain3", chain ());
  ]

type pair = {
  pid : string;  (* twin label: identical in both digest files *)
  mono : unit -> Net.Sender.factory;
  dp : unit -> Net.Sender.factory;
}

let pairs =
  [
    {
      pid = "cubic-twin";
      mono = (fun () -> Proteus_cc.Cubic.factory ());
      dp = (fun () -> Proteus_cc.Cubic_dp.factory ());
    };
    {
      pid = "ledbat-twin";
      mono = (fun () -> Proteus_cc.Ledbat.factory ());
      dp = (fun () -> Proteus_cc.Ledbat_dp.factory ());
    };
    {
      pid = "ledbat25-twin";
      mono =
        (fun () -> Proteus_cc.Ledbat.factory ~params:Proteus_cc.Ledbat.draft_25ms ());
      dp =
        (fun () ->
          Proteus_cc.Ledbat_dp.factory
            ~consts:[ ("target", Net.Units.ms 25.0) ]
            ());
    };
  ]

let run () =
  Exp_common.header
    "Datapath parity: fold-program twins vs monolithic controllers";
  let oc_mono = open_out "DP_digest_monolithic.txt" in
  let oc_dp = open_out "DP_digest_datapath.txt" in
  let mismatches = ref 0 in
  List.iter
    (fun (kname, kernel) ->
      List.iter
        (fun (sid, (topo, route)) ->
          List.iter
            (fun p ->
              let d_mono =
                run_scenario ~kernel ~seed:11 ~topo ~route (p.mono ())
              in
              let d_dp = run_scenario ~kernel ~seed:11 ~topo ~route (p.dp ()) in
              Printf.fprintf oc_mono "%s/%s/%s %s\n" sid kname p.pid d_mono;
              Printf.fprintf oc_dp "%s/%s/%s %s\n" sid kname p.pid d_dp;
              let ok = String.equal d_mono d_dp in
              if not ok then incr mismatches;
              Printf.printf "%-8s %-6s %-14s %s\n" sid kname p.pid
                (if ok then "ok" else "MISMATCH"))
            pairs)
        (scenarios ()))
    [ ("heap", Sim.Heap_kernel); ("wheel", Sim.Wheel_kernel) ];
  close_out oc_mono;
  close_out oc_dp;
  Printf.printf "(wrote DP_digest_monolithic.txt, DP_digest_datapath.txt)\n";
  if !mismatches > 0 then
    failwith
      (Printf.sprintf "dp-parity: %d digest mismatch(es) between fold twins \
                       and monolithic controllers" !mismatches);
  Printf.printf "dp-parity: all %d twin runs byte-identical\n"
    (2 * List.length (scenarios ()) * List.length pairs)
